//! Characterization cache with drift-aware invalidation.
//!
//! Characterization is the expensive step of the paper's toolflow (hours
//! of machine time at paper scale), and its product stays valid until the
//! next calibration day. Since PR 5 this is a *typed layer over the
//! content-addressed [`ArtifactCache`]* from `xtalk-pass`: entries live
//! under pass id `"charac"`, addressed by the FNV-1a hash of
//! `(policy, seed)` and the [`EpochToken`] of `(device, epoch)` — the
//! same store that holds compile artifacts, so one `advance_day`
//! invalidation sweep covers characterizations and compilation results
//! alike, and charac lookups show up in the `pass.cache.hit`/`miss`
//! profiling counters.

use std::sync::Arc;
use xtalk_charac::{Characterization, CharacterizationReport};
use xtalk_pass::{ArtifactCache, EpochToken, Fnv1a};

/// Identity of one characterization run.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Device name.
    pub device: String,
    /// Policy name (`truth`, `all`, `onehop`, `binpacked`).
    pub policy: String,
    /// RB seed.
    pub seed: u64,
    /// Calibration epoch the run is valid for.
    pub epoch: u64,
}

impl CacheKey {
    /// The artifact-cache coordinates: content hash of the request
    /// parameters plus the device-epoch token.
    fn coords(&self) -> (u64, EpochToken) {
        let mut h = Fnv1a::new();
        h.write_str(&self.policy);
        h.write_u64(self.seed);
        (h.finish(), EpochToken::new(self.device.clone(), self.epoch))
    }
}

/// A cached characterization plus (for measured policies) its cost report.
#[derive(Clone, PartialEq, Debug)]
pub struct CacheEntry {
    /// The compiler-facing error tables.
    pub charac: Characterization,
    /// Cost accounting; `None` for the free `truth` policy.
    pub report: Option<CharacterizationReport>,
}

/// The pass id characterization entries are stored under.
const PASS_ID: &str = "charac";

/// Thread-safe characterization store over a shared [`ArtifactCache`].
pub struct CharacCache {
    artifacts: Arc<ArtifactCache>,
}

impl Default for CharacCache {
    fn default() -> Self {
        CharacCache::new()
    }
}

impl CharacCache {
    /// An empty cache over a private artifact store.
    pub fn new() -> Self {
        CharacCache::over(Arc::new(ArtifactCache::new()))
    }

    /// A characterization layer over an existing artifact store — the
    /// serving configuration, where compile artifacts share the store.
    pub fn over(artifacts: Arc<ArtifactCache>) -> Self {
        CharacCache { artifacts }
    }

    /// The underlying artifact store.
    pub fn artifacts(&self) -> &Arc<ArtifactCache> {
        &self.artifacts
    }

    /// Looks up `key`; on a miss, runs `build` (outside the lock — two
    /// racing misses may both build, last write wins, both results are
    /// identical because characterization is deterministic in the key)
    /// and stores the result. Returns the entry and whether it was a hit.
    pub fn get_or_build(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> CacheEntry,
    ) -> (Arc<CacheEntry>, bool) {
        if let Some(hit) = self.get(&key) {
            return (hit, true);
        }
        let entry = Arc::new(build());
        self.insert(key, entry.clone());
        (entry, false)
    }

    /// Direct lookup without building.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CacheEntry>> {
        let (hash, epoch) = key.coords();
        self.artifacts.get::<CacheEntry>(PASS_ID, hash, &epoch)
    }

    /// Stores an entry (used by the fallible-build path in
    /// [`crate::state::ServeState::characterization`], which cannot use
    /// [`CharacCache::get_or_build`]'s infallible closure).
    pub fn insert(&self, key: CacheKey, entry: Arc<CacheEntry>) {
        let (hash, epoch) = key.coords();
        self.artifacts.put(PASS_ID, hash, &epoch, entry);
    }

    /// Drops every entry from an epoch before `epoch` — called when the
    /// calibration day advances. Sweeps the whole shared artifact store,
    /// compile artifacts included: drifted calibration invalidates both.
    pub fn invalidate_before(&self, epoch: u64) {
        self.artifacts.invalidate_before(epoch);
    }

    /// Number of live characterization entries (compile artifacts in the
    /// shared store are not counted).
    pub fn len(&self) -> usize {
        self.artifacts.len_of(PASS_ID)
    }

    /// `true` if no characterizations are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_device::Device;

    fn key(epoch: u64) -> CacheKey {
        CacheKey { device: "d".into(), policy: "truth".into(), seed: 7, epoch }
    }

    fn entry() -> CacheEntry {
        let device = Device::line(3, 1);
        CacheEntry { charac: Characterization::from_ground_truth(&device), report: None }
    }

    #[test]
    fn hit_after_miss() {
        let cache = CharacCache::new();
        let (_, hit) = cache.get_or_build(key(0), entry);
        assert!(!hit);
        let (_, hit) = cache.get_or_build(key(0), || panic!("must not rebuild"));
        assert!(hit);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = CharacCache::new();
        cache.get_or_build(key(0), entry);
        let mut other = key(0);
        other.seed = 8;
        let (_, hit) = cache.get_or_build(other, entry);
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn epoch_invalidation() {
        let cache = CharacCache::new();
        cache.get_or_build(key(0), entry);
        cache.get_or_build(key(1), entry);
        cache.invalidate_before(1);
        assert_eq!(cache.len(), 1);
        let (_, hit) = cache.get_or_build(key(0), entry);
        assert!(!hit, "epoch-0 entry must be gone");
        let (_, hit) = cache.get_or_build(key(1), || panic!("epoch-1 entry must survive"));
        assert!(hit);
    }

    #[test]
    fn charac_and_compile_artifacts_share_the_store() {
        let artifacts = Arc::new(ArtifactCache::new());
        let cache = CharacCache::over(Arc::clone(&artifacts));
        cache.insert(key(0), Arc::new(entry()));
        // A compile artifact under another pass id coexists but is not
        // counted as a characterization.
        artifacts.put("lower", 1, &EpochToken::new("d", 0), Arc::new(1u64));
        assert_eq!(cache.len(), 1);
        assert_eq!(artifacts.len(), 2);
        // One sweep invalidates both kinds.
        cache.invalidate_before(1);
        assert_eq!(artifacts.len(), 0);
    }
}
