//! Characterization cache with drift-aware invalidation.
//!
//! Characterization is the expensive step of the paper's toolflow (hours
//! of machine time at paper scale), and its product stays valid until the
//! next calibration day. The cache therefore keys entries by
//! `(device, policy, seed)` *plus the calibration epoch*: an
//! `advance_day` request drifts every device (via
//! [`xtalk_device::Device::on_day`], which applies the daily-drift model
//! of `xtalk-device`'s calibration) and bumps the epoch, instantly
//! invalidating every cached characterization.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use xtalk_charac::{Characterization, CharacterizationReport};

/// Identity of one characterization run.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Device name.
    pub device: String,
    /// Policy name (`truth`, `all`, `onehop`, `binpacked`).
    pub policy: String,
    /// RB seed.
    pub seed: u64,
    /// Calibration epoch the run is valid for.
    pub epoch: u64,
}

/// A cached characterization plus (for measured policies) its cost report.
#[derive(Clone, PartialEq, Debug)]
pub struct CacheEntry {
    /// The compiler-facing error tables.
    pub charac: Characterization,
    /// Cost accounting; `None` for the free `truth` policy.
    pub report: Option<CharacterizationReport>,
}

/// Thread-safe characterization store.
#[derive(Default)]
pub struct CharacCache {
    map: Mutex<HashMap<CacheKey, Arc<CacheEntry>>>,
}

impl CharacCache {
    /// An empty cache.
    pub fn new() -> Self {
        CharacCache::default()
    }

    /// Looks up `key`; on a miss, runs `build` (outside the lock — two
    /// racing misses may both build, last write wins, both results are
    /// identical because characterization is deterministic in the key)
    /// and stores the result. Returns the entry and whether it was a hit.
    pub fn get_or_build(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> CacheEntry,
    ) -> (Arc<CacheEntry>, bool) {
        if let Some(hit) = self.map.lock().unwrap().get(&key).cloned() {
            return (hit, true);
        }
        let entry = Arc::new(build());
        self.map.lock().unwrap().insert(key, entry.clone());
        (entry, false)
    }

    /// Direct lookup without building.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CacheEntry>> {
        self.map.lock().unwrap().get(key).cloned()
    }

    /// Stores an entry (used by the fallible-build path in
    /// [`crate::state::ServeState::characterization`], which cannot use
    /// [`CharacCache::get_or_build`]'s infallible closure).
    pub fn insert(&self, key: CacheKey, entry: Arc<CacheEntry>) {
        self.map.lock().unwrap().insert(key, entry);
    }

    /// Drops every entry from an epoch before `epoch` — called when the
    /// calibration day advances.
    pub fn invalidate_before(&self, epoch: u64) {
        self.map.lock().unwrap().retain(|k, _| k.epoch >= epoch);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// `true` if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_charac::Characterization;
    use xtalk_device::Device;

    fn key(epoch: u64) -> CacheKey {
        CacheKey { device: "d".into(), policy: "truth".into(), seed: 7, epoch }
    }

    fn entry() -> CacheEntry {
        let device = Device::line(3, 1);
        CacheEntry { charac: Characterization::from_ground_truth(&device), report: None }
    }

    #[test]
    fn hit_after_miss() {
        let cache = CharacCache::new();
        let (_, hit) = cache.get_or_build(key(0), entry);
        assert!(!hit);
        let (_, hit) = cache.get_or_build(key(0), || panic!("must not rebuild"));
        assert!(hit);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = CharacCache::new();
        cache.get_or_build(key(0), entry);
        let mut other = key(0);
        other.seed = 8;
        let (_, hit) = cache.get_or_build(other, entry);
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn epoch_invalidation() {
        let cache = CharacCache::new();
        cache.get_or_build(key(0), entry);
        cache.get_or_build(key(1), entry);
        cache.invalidate_before(1);
        assert_eq!(cache.len(), 1);
        let (_, hit) = cache.get_or_build(key(0), entry);
        assert!(!hit, "epoch-0 entry must be gone");
        let (_, hit) = cache.get_or_build(key(1), || panic!("epoch-1 entry must survive"));
        assert!(hit);
    }
}
