//! Blocking client for the job service, with deadlines, reconnects and
//! seeded retry/backoff.
//!
//! # Resilience model
//!
//! A [`Client`] remembers the address it connected to and the I/O
//! timeouts it was given, so it can transparently **reconnect** when the
//! connection drops mid-request. [`Client::request_with_retry`] layers a
//! [`RetryPolicy`] on top:
//!
//! * **retryable responses** (`"retryable": true` — busy, shutting_down,
//!   quarantined, caught worker panics) are retried on the same
//!   connection after a backoff;
//! * **transient I/O errors** (timeouts, resets, broken pipes, refused
//!   connections) trigger a reconnect before the retry;
//! * anything else — fatal responses or unrecoverable I/O errors — is
//!   returned immediately.
//!
//! Backoff uses *decorrelated jitter* (sleep = `uniform(base, prev*3)`
//! capped) driven by a seeded [`xtalk_fault::SplitMix64`], so chaos-test
//! runs replay bit-identically.

use crate::json::{obj, Json};
use crate::protocol::{is_retryable, read_frame, write_frame};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use xtalk_fault::SplitMix64;

/// Retry/backoff parameters for [`Client::request_with_retry`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Lower bound of every backoff sleep.
    pub base: Duration,
    /// Upper bound of any backoff sleep.
    pub cap: Duration,
    /// Seed for the jitter stream; a fixed seed makes the whole backoff
    /// schedule reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(20),
            cap: Duration::from_secs(1),
            seed: 0,
        }
    }
}

/// One connection to a running server. Requests are strictly
/// request/response over the same connection, so a client is cheap and a
/// caller wanting concurrency opens several.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Resolved peer address, kept for reconnects.
    addr: SocketAddr,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let addr = resolve(addr)?;
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
            addr,
            read_timeout: None,
            write_timeout: None,
        })
    }

    /// Connects with a deadline governing the connect itself and both
    /// I/O directions — a client that can never hang on a dead server.
    pub fn connect_with_deadline<A: ToSocketAddrs>(addr: A, deadline: Duration) -> io::Result<Client> {
        let addr = resolve(addr)?;
        let stream = TcpStream::connect_timeout(&addr, deadline)?;
        let mut client = Client {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
            addr,
            read_timeout: None,
            write_timeout: None,
        };
        client.set_io_timeouts(Some(deadline), Some(deadline))?;
        Ok(client)
    }

    /// The peer address this client (re)connects to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bounds how long [`Client::request`] waits for a response
    /// (`None` = forever).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_timeout = timeout;
        self.writer.set_read_timeout(timeout)
    }

    /// Sets both socket timeouts; they survive reconnects.
    pub fn set_io_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> io::Result<()> {
        self.read_timeout = read;
        self.write_timeout = write;
        self.writer.set_read_timeout(read)?;
        self.writer.set_write_timeout(write)
    }

    /// Drops the current connection and dials the remembered address
    /// again, reapplying the configured timeouts.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect_timeout(
            &self.addr,
            self.write_timeout.unwrap_or(Duration::from_secs(10)),
        )?;
        stream.set_read_timeout(self.read_timeout)?;
        stream.set_write_timeout(self.write_timeout)?;
        self.writer = stream.try_clone()?;
        self.reader = BufReader::new(stream);
        Ok(())
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        write_frame(&mut self.writer, request)?;
        read_frame(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server hung up"))
    }

    /// Sends a request, retrying retryable failures with seeded
    /// decorrelated-jitter backoff and reconnecting across transient I/O
    /// errors. Returns the last response when attempts run out (so the
    /// caller still sees the `busy`/`shutting_down`/`quarantined` flag),
    /// or the last error if the final attempt failed at the I/O layer.
    pub fn request_with_retry(&mut self, request: &Json, policy: &RetryPolicy) -> io::Result<Json> {
        let attempts = policy.max_attempts.max(1);
        let mut jitter = SplitMix64::new(policy.seed);
        let mut prev_sleep = policy.base;
        let mut backoff = |prev: Duration| -> Duration {
            // Decorrelated jitter: uniform in [base, prev*3], capped.
            let lo = policy.base.as_millis() as u64;
            let hi = (prev.as_millis() as u64).saturating_mul(3).max(lo + 1);
            let span = hi - lo;
            let sleep = Duration::from_millis(lo + (jitter.next_u64() % span));
            sleep.min(policy.cap)
        };
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                prev_sleep = backoff(prev_sleep);
                std::thread::sleep(prev_sleep);
            }
            match self.request(request) {
                Ok(resp) => {
                    if !is_retryable(&resp) || attempt + 1 == attempts {
                        return Ok(resp);
                    }
                    // Retryable response: same connection, after backoff.
                }
                Err(e) if transient_io(&e) => {
                    // The connection may be wedged or gone; redial. A
                    // failed reconnect is itself retried next attempt.
                    last_err = Some(e);
                    if let Err(re) = self.reconnect() {
                        last_err = Some(re);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::TimedOut, "retries exhausted without a response")
        }))
    }

    /// Liveness probe; `Ok(true)` if the server answered the ping.
    pub fn ping(&mut self) -> io::Result<bool> {
        let resp = self.request(&obj([("type", "ping".into())]))?;
        Ok(resp.get("ok").and_then(Json::as_bool).unwrap_or(false))
    }

    /// Fetches the metrics snapshot.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.request(&obj([("type", "stats".into())]))
    }

    /// Advances the simulated calibration day, returning the new epoch.
    pub fn advance_day(&mut self) -> io::Result<u64> {
        let resp = self.request(&obj([("type", "advance_day".into())]))?;
        resp.get("epoch")
            .and_then(Json::as_u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no epoch in response"))
    }

    /// Asks the server to stop accepting connections.
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request(&obj([("type", "shutdown".into())]))
    }

    /// Submits a `run` job for a QASM source with the given options.
    pub fn run_qasm(
        &mut self,
        qasm: &str,
        device: &str,
        scheduler: &str,
        shots: u64,
        seed: u64,
    ) -> io::Result<Json> {
        self.request(&obj([
            ("type", "run".into()),
            ("qasm", qasm.into()),
            ("device", device.into()),
            ("scheduler", scheduler.into()),
            ("shots", shots.into()),
            ("seed", seed.into()),
        ]))
    }

    /// [`Client::run_qasm`] with a server-side execution budget: the job
    /// must finish (queue wait included) within `deadline_ms` or come
    /// back as a `budget_exhausted` partial; `job` labels it for
    /// [`Client::cancel`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_qasm_budgeted(
        &mut self,
        qasm: &str,
        device: &str,
        scheduler: &str,
        shots: u64,
        seed: u64,
        deadline_ms: u64,
        job: Option<&str>,
    ) -> io::Result<Json> {
        let mut fields = vec![
            ("type".to_string(), Json::from("run")),
            ("qasm".to_string(), qasm.into()),
            ("device".to_string(), device.into()),
            ("scheduler".to_string(), scheduler.into()),
            ("shots".to_string(), shots.into()),
            ("seed".to_string(), seed.into()),
            ("deadline_ms".to_string(), deadline_ms.into()),
        ];
        if let Some(label) = job {
            fields.push(("job".to_string(), label.into()));
        }
        self.request(&Json::Obj(fields))
    }

    /// Cancels the in-flight job submitted under `label`, tripping the
    /// cancel token its budget polls. `Ok(true)` when a queued or
    /// running job was found; `Ok(false)` means it already finished (or
    /// was never submitted) — cancels race completions by nature.
    pub fn cancel(&mut self, label: &str) -> io::Result<bool> {
        let resp =
            self.request(&obj([("type", "cancel".into()), ("job", label.into())]))?;
        Ok(resp.get("cancelled").and_then(Json::as_bool).unwrap_or(false))
    }
}

fn resolve<A: ToSocketAddrs>(addr: A) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing"))
}

/// I/O error kinds a reconnect-and-retry can plausibly clear. Everything
/// else (permission, unsupported, invalid input...) is fatal.
fn transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
    )
}

/// `true` if a response is the backpressure (queue-full) rejection.
pub fn is_busy(resp: &Json) -> bool {
    resp.get("busy").and_then(Json::as_bool).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_reproducible_and_bounded() {
        let policy = RetryPolicy { seed: 42, ..RetryPolicy::default() };
        let schedule = |p: &RetryPolicy| -> Vec<u64> {
            let mut jitter = SplitMix64::new(p.seed);
            let mut prev = p.base;
            (0..6)
                .map(|_| {
                    let lo = p.base.as_millis() as u64;
                    let hi = (prev.as_millis() as u64).saturating_mul(3).max(lo + 1);
                    let sleep = Duration::from_millis(lo + (jitter.next_u64() % (hi - lo)));
                    prev = sleep.min(p.cap);
                    prev.as_millis() as u64
                })
                .collect()
        };
        let a = schedule(&policy);
        let b = schedule(&policy);
        assert_eq!(a, b, "same seed must give the same backoff schedule");
        for &ms in &a {
            assert!(ms >= policy.base.as_millis() as u64);
            assert!(ms <= policy.cap.as_millis() as u64);
        }
        let c = schedule(&RetryPolicy { seed: 43, ..policy });
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn transient_kinds_are_classified() {
        assert!(transient_io(&io::Error::new(io::ErrorKind::ConnectionReset, "x")));
        assert!(transient_io(&io::Error::new(io::ErrorKind::TimedOut, "x")));
        assert!(transient_io(&io::Error::new(io::ErrorKind::UnexpectedEof, "x")));
        assert!(!transient_io(&io::Error::new(io::ErrorKind::InvalidData, "x")));
        assert!(!transient_io(&io::Error::new(io::ErrorKind::PermissionDenied, "x")));
    }
}
