//! Blocking client for the job service.

use crate::json::{obj, Json};
use crate::protocol::{read_frame, write_frame};
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a running server. Requests are strictly
/// request/response over the same connection, so a client is cheap and a
/// caller wanting concurrency opens several.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client { writer: stream.try_clone()?, reader: BufReader::new(stream) })
    }

    /// Bounds how long [`Client::request`] waits for a response
    /// (`None` = forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        write_frame(&mut self.writer, request)?;
        read_frame(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server hung up"))
    }

    /// Liveness probe; `Ok(true)` if the server answered the ping.
    pub fn ping(&mut self) -> io::Result<bool> {
        let resp = self.request(&obj([("type", "ping".into())]))?;
        Ok(resp.get("ok").and_then(Json::as_bool).unwrap_or(false))
    }

    /// Fetches the metrics snapshot.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.request(&obj([("type", "stats".into())]))
    }

    /// Advances the simulated calibration day, returning the new epoch.
    pub fn advance_day(&mut self) -> io::Result<u64> {
        let resp = self.request(&obj([("type", "advance_day".into())]))?;
        resp.get("epoch")
            .and_then(Json::as_u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no epoch in response"))
    }

    /// Asks the server to stop accepting connections.
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request(&obj([("type", "shutdown".into())]))
    }

    /// Submits a `run` job for a QASM source with the given options.
    pub fn run_qasm(
        &mut self,
        qasm: &str,
        device: &str,
        scheduler: &str,
        shots: u64,
        seed: u64,
    ) -> io::Result<Json> {
        self.request(&obj([
            ("type", "run".into()),
            ("qasm", qasm.into()),
            ("device", device.into()),
            ("scheduler", scheduler.into()),
            ("shots", shots.into()),
            ("seed", seed.into()),
        ]))
    }
}

/// `true` if a response is the backpressure (queue-full) rejection.
pub fn is_busy(resp: &Json) -> bool {
    resp.get("busy").and_then(Json::as_bool).unwrap_or(false)
}
