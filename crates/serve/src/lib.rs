//! A multi-threaded job service for the crosstalk-mitigation toolchain.
//!
//! This crate turns the library pipeline (characterize → schedule → run)
//! into a long-lived network service, std-only and dependency-free:
//!
//! * **Wire protocol** — line-delimited JSON over TCP with a hand-rolled
//!   codec ([`protocol`], [`json`]). Requests: `ping`, `stats`,
//!   `shutdown`, `advance_day`, `sleep`, `characterize`, `schedule`,
//!   `run`, `swap_demo`, `cancel`.
//! * **End-to-end deadlines** — any heavy request may carry
//!   `"deadline_ms"` (and a `"job"` label for `cancel`); the budget is
//!   pinned at arrival so queue wait counts against it, requests whose
//!   budget is already smaller than the observed queue-wait p90 are
//!   refused at admission (`rejected_admission`, retryable), and jobs
//!   whose budget expires mid-flight come back `ok: true` with
//!   `"budget_exhausted": true` plus exact progress provenance
//!   (`shots_completed`, `leaves`, `slept_ms`) — see [`xtalk_budget`].
//! * **Worker pool** — a supervised, fixed-size set of OS threads pulling
//!   from one bounded queue ([`pool`]); when the queue is full the server
//!   answers `{"ok":false,"busy":true}` instead of buffering unboundedly.
//!   A worker that dies mid-job is respawned and its in-flight job
//!   quarantined with an explicit retryable response; shutdown drains the
//!   queue (jobs complete or get `{"shutting_down":true}` — nothing is
//!   silently dropped).
//! * **Fault injection** — named injection points (`codec.read`,
//!   `codec.write`, `pool.spawn`, `pool.job`, `cache.lookup`,
//!   `charac.run`, `sim.batch`) driven by
//!   [`xtalk-fault`](xtalk_fault)'s seeded decision streams; chaos runs
//!   replay bit-identically from a seed.
//! * **Retry/backoff** — [`Client::request_with_retry`] with a
//!   [`RetryPolicy`]: retryable responses (`busy`, `shutting_down`,
//!   `quarantined`, caught panics) and transient I/O errors are retried
//!   with seeded decorrelated-jitter backoff and transparent reconnects.
//! * **Characterization cache** — results keyed by
//!   `(device, policy, seed)` and the calibration epoch ([`cache`]);
//!   `advance_day` drifts every device through
//!   [`xtalk_device::Device::on_day`] (the daily-drift model of the
//!   paper's Section 5.1) and invalidates the cache.
//! * **Metrics** — request/latency/queue-depth/cache counters surfaced by
//!   the `stats` request and the shutdown summary ([`metrics`]).
//! * **Determinism** — `run` jobs execute through
//!   [`xtalk-sim`](xtalk_sim)'s parallel trajectory executor, whose
//!   per-shot seed derivation makes counts bit-identical for a fixed seed
//!   regardless of worker or executor thread count.
//!
//! ```no_run
//! use xtalk_serve::{Client, ServeConfig, Server};
//!
//! let mut config = ServeConfig::default();
//! config.addr = "127.0.0.1:0".to_string();
//! let server = Server::start(config).unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let bell = "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0]->c[0];\nmeasure q[1]->c[1];\n";
//! let resp = client.run_qasm(bell, "poughkeepsie", "xtalk", 2048, 7).unwrap();
//! println!("{}", resp.dump());
//! client.shutdown().unwrap();
//! println!("{}", server.join());
//! ```

pub mod cache;
pub mod client;
pub mod jobs;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod state;

pub use client::{is_busy, Client, RetryPolicy};
pub use json::Json;
pub use protocol::{is_retryable, JobEnvelope, Request};
pub use server::Server;
pub use state::{ServeConfig, ServeState};

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes unit tests that install a process-global fault plan;
    /// tests touching fault-instrumented paths (characterization, codec)
    /// must hold this for their whole body.
    pub fn fault_gate() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }
}
