//! Lock-free service metrics, reported through `stats` requests and the
//! shutdown summary.

use crate::json::{obj, Json};
use std::sync::atomic::{AtomicU64, Ordering};
use xtalk_obs::Histogram;

/// Counter registry. All counters are monotonic except `queue_depth`,
/// which tracks the jobs currently waiting in (or admitted to) the pool.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests decoded, of any type.
    pub requests: AtomicU64,
    /// Requests rejected with the busy (backpressure) response.
    pub busy_rejections: AtomicU64,
    /// Malformed frames / undecodable requests.
    pub bad_requests: AtomicU64,
    /// Jobs a worker finished successfully.
    pub jobs_ok: AtomicU64,
    /// Jobs that returned an error (including worker panics).
    pub jobs_failed: AtomicU64,
    /// Jobs whose caller gave up waiting (the job itself still ran).
    pub jobs_timed_out: AtomicU64,
    /// Jobs currently queued or running.
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub queue_peak: AtomicU64,
    /// Characterization cache hits.
    pub cache_hits: AtomicU64,
    /// Characterization cache misses (characterization actually ran).
    pub cache_misses: AtomicU64,
    /// Sum of worker job latencies, microseconds.
    pub job_micros: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Workers the supervisor respawned after a panic.
    pub workers_respawned: AtomicU64,
    /// In-flight jobs quarantined because their worker died.
    pub jobs_quarantined: AtomicU64,
    /// Queued jobs answered `shutting_down` during the shutdown drain.
    pub jobs_drained: AtomicU64,
    /// Characterization builds that failed (panicked or errored).
    pub charac_failures: AtomicU64,
    /// Requests served from a stale last-known-good characterization.
    pub degraded_stale: AtomicU64,
    /// Requests degraded all the way to the independent-error model.
    pub degraded_independent: AtomicU64,
    /// Deadline-bearing requests refused on arrival because the observed
    /// queue wait already exceeded their budget.
    pub rejected_admission: AtomicU64,
    /// Jobs whose cancel token a `cancel` request tripped while they were
    /// queued or running.
    pub jobs_cancelled: AtomicU64,
    /// Jobs answered with a `budget_exhausted` best-effort partial.
    pub partial_results: AtomicU64,
    /// Queue wait (admission → dequeue) in microseconds; its p90 drives
    /// admission control for deadline-bearing requests.
    pub queue_wait_micros: Histogram,
}

impl Metrics {
    /// Bumps a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a job entering the pool, maintaining the high-water mark.
    pub fn job_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Reverses a [`Metrics::job_enqueued`] whose submission was then
    /// rejected (queue full / pool gone).
    pub fn job_rejected(&self) {
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| Some(d.saturating_sub(1)));
    }

    /// Records how long a job sat queued before a worker picked it up.
    pub fn queue_wait_recorded(&self, micros: u64) {
        self.queue_wait_micros.record(micros);
    }

    /// The observed 90th-percentile queue wait in whole milliseconds
    /// (octave resolution; 0 until any job has been dequeued).
    pub fn queue_wait_p90_ms(&self) -> u64 {
        self.queue_wait_micros.quantile(0.90) / 1000
    }

    /// Notes a job leaving the pool after `micros` of work.
    pub fn job_finished(&self, micros: u64, ok: bool) {
        // Saturating: a job submitted without `job_enqueued` (as some unit
        // tests do) must not wrap the gauge.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| Some(d.saturating_sub(1)));
        self.job_micros.fetch_add(micros, Ordering::Relaxed);
        Metrics::inc(if ok { &self.jobs_ok } else { &self.jobs_failed });
    }

    /// Point-in-time snapshot as a JSON object (the `stats` payload).
    pub fn snapshot(&self) -> Json {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let jobs = load(&self.jobs_ok) + load(&self.jobs_failed);
        let mean_ms = if jobs == 0 {
            0.0
        } else {
            load(&self.job_micros) as f64 / jobs as f64 / 1000.0
        };
        obj([
            ("requests", load(&self.requests).into()),
            ("connections", load(&self.connections).into()),
            ("busy_rejections", load(&self.busy_rejections).into()),
            ("bad_requests", load(&self.bad_requests).into()),
            ("jobs_ok", load(&self.jobs_ok).into()),
            ("jobs_failed", load(&self.jobs_failed).into()),
            ("jobs_timed_out", load(&self.jobs_timed_out).into()),
            ("queue_depth", load(&self.queue_depth).into()),
            ("queue_peak", load(&self.queue_peak).into()),
            ("cache_hits", load(&self.cache_hits).into()),
            ("cache_misses", load(&self.cache_misses).into()),
            ("workers_respawned", load(&self.workers_respawned).into()),
            ("jobs_quarantined", load(&self.jobs_quarantined).into()),
            ("jobs_drained", load(&self.jobs_drained).into()),
            ("charac_failures", load(&self.charac_failures).into()),
            ("degraded_stale", load(&self.degraded_stale).into()),
            ("degraded_independent", load(&self.degraded_independent).into()),
            ("rejected_admission", load(&self.rejected_admission).into()),
            ("jobs_cancelled", load(&self.jobs_cancelled).into()),
            ("partial_results", load(&self.partial_results).into()),
            ("queue_wait_p50_ms", (self.queue_wait_micros.quantile(0.50) / 1000).into()),
            ("queue_wait_p90_ms", self.queue_wait_p90_ms().into()),
            ("queue_wait_p99_ms", (self.queue_wait_micros.quantile(0.99) / 1000).into()),
            ("queue_wait_max_ms", (self.queue_wait_micros.max() / 1000).into()),
            ("mean_job_ms", Json::Num((mean_ms * 1000.0).round() / 1000.0)),
        ])
    }

    /// One-line human summary for the shutdown log. Resilience counters
    /// (respawns, quarantines, drains, degradations) are appended only
    /// when non-zero, keeping the happy-path line unchanged.
    pub fn summary(&self) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut line = format!(
            "served {} requests over {} connections: {} jobs ok, {} failed, \
             {} timed out, {} shed (queue peak {}); cache {} hits / {} misses",
            load(&self.requests),
            load(&self.connections),
            load(&self.jobs_ok),
            load(&self.jobs_failed),
            load(&self.jobs_timed_out),
            load(&self.busy_rejections),
            load(&self.queue_peak),
            load(&self.cache_hits),
            load(&self.cache_misses),
        );
        let resilience = [
            ("respawned", load(&self.workers_respawned)),
            ("quarantined", load(&self.jobs_quarantined)),
            ("drained", load(&self.jobs_drained)),
            ("charac failures", load(&self.charac_failures)),
            ("stale-degraded", load(&self.degraded_stale)),
            ("independent-degraded", load(&self.degraded_independent)),
            ("admission-rejected", load(&self.rejected_admission)),
            ("cancelled", load(&self.jobs_cancelled)),
            ("partial", load(&self.partial_results)),
        ];
        if resilience.iter().any(|&(_, n)| n > 0) {
            let parts: Vec<String> = resilience
                .iter()
                .filter(|&&(_, n)| n > 0)
                .map(|&(label, n)| format!("{n} {label}"))
                .collect();
            line.push_str(&format!("; resilience: {}", parts.join(", ")));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = Metrics::default();
        Metrics::inc(&m.requests);
        Metrics::inc(&m.requests);
        m.job_enqueued();
        m.job_enqueued();
        m.job_finished(1500, true);
        m.job_finished(500, false);
        let s = m.snapshot();
        assert_eq!(s.get("requests").and_then(Json::as_u64), Some(2));
        assert_eq!(s.get("jobs_ok").and_then(Json::as_u64), Some(1));
        assert_eq!(s.get("jobs_failed").and_then(Json::as_u64), Some(1));
        assert_eq!(s.get("queue_depth").and_then(Json::as_u64), Some(0));
        assert_eq!(s.get("queue_peak").and_then(Json::as_u64), Some(2));
        assert_eq!(s.get("mean_job_ms").and_then(Json::as_f64), Some(1.0));
        assert!(m.summary().contains("2 requests"));
    }

    #[test]
    fn queue_wait_percentiles_drive_admission() {
        let m = Metrics::default();
        assert_eq!(m.queue_wait_p90_ms(), 0, "no samples: always admit");
        // 8 fast dequeues (~1 ms) and two slow (~1 s): the p90 lands in
        // the slow octave, the p50 in the fast one.
        for _ in 0..8 {
            m.queue_wait_recorded(1_000);
        }
        m.queue_wait_recorded(1_000_000);
        m.queue_wait_recorded(1_000_000);
        let s = m.snapshot();
        let p50 = s.get("queue_wait_p50_ms").and_then(Json::as_u64).unwrap();
        let p90 = s.get("queue_wait_p90_ms").and_then(Json::as_u64).unwrap();
        assert!(p50 <= 2, "p50 {p50} ms");
        assert!(p90 >= 500, "p90 {p90} ms");
        assert_eq!(s.get("queue_wait_max_ms").and_then(Json::as_u64), Some(1_000));
        // New counters surface in the snapshot and the summary.
        Metrics::inc(&m.rejected_admission);
        Metrics::inc(&m.jobs_cancelled);
        Metrics::inc(&m.partial_results);
        let s = m.snapshot();
        assert_eq!(s.get("rejected_admission").and_then(Json::as_u64), Some(1));
        assert_eq!(s.get("jobs_cancelled").and_then(Json::as_u64), Some(1));
        assert_eq!(s.get("partial_results").and_then(Json::as_u64), Some(1));
        let line = m.summary();
        assert!(line.contains("1 admission-rejected"), "{line}");
        assert!(line.contains("1 cancelled"), "{line}");
        assert!(line.contains("1 partial"), "{line}");
    }
}
