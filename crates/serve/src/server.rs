//! The TCP front end: accept loop, connection threads, dispatch.

use crate::json::Json;
use crate::metrics::Metrics;
use crate::pool::{Job, Pool, PoolHandle, Submit};
use crate::protocol::{
    busy_response, err_response, ok_response, read_frame, rejected_admission_response,
    shutting_down_response, write_frame, JobEnvelope, Request,
};
use crate::state::{ServeConfig, ServeState};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xtalk_budget::CancelToken;

/// A running job server.
///
/// ```no_run
/// use xtalk_serve::{Client, ServeConfig, Server};
/// let mut config = ServeConfig::default();
/// config.addr = "127.0.0.1:0".to_string(); // ephemeral port
/// let server = Server::start(config).unwrap();
/// let mut client = Client::connect(server.local_addr()).unwrap();
/// assert!(client.ping().unwrap());
/// client.shutdown().unwrap();
/// println!("{}", server.join());
/// ```
pub struct Server {
    state: Arc<ServeState>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    pool: Pool,
}

impl Server {
    /// Binds the configured address, spawns the worker pool and the
    /// accept loop, and returns immediately.
    pub fn start(mut config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // Rewrite to the bound address so ephemeral ports (":0") resolve
        // everywhere the config is consulted (e.g. the shutdown poke).
        config.addr = local_addr.to_string();
        let workers = config.effective_workers();
        let queue_cap = config.queue_cap;
        if config.profile {
            xtalk_obs::set_enabled(true);
        }
        let state = ServeState::new(config);
        let pool = Pool::new(workers, queue_cap, state.clone());
        let acceptor = {
            let state = state.clone();
            let handle = pool.handle();
            std::thread::Builder::new()
                .name("xtalk-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &state, &handle))?
        };
        Ok(Server { state, local_addr, acceptor, pool })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared state (metrics, cache, devices).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Requests shutdown from this process (equivalent to a client
    /// sending `{"type":"shutdown"}`).
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        poke(self.local_addr);
    }

    /// Waits for the accept loop to exit (after a shutdown request),
    /// drains the worker pool, and returns the metrics summary.
    pub fn join(self) -> String {
        let _ = self.acceptor.join();
        self.pool.shutdown();
        self.state.metrics.summary()
    }
}

/// Wakes a listener blocked in `accept` by connecting and hanging up.
fn poke(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServeState>, pool: &PoolHandle) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        Metrics::inc(&state.metrics.connections);
        let state = state.clone();
        let pool = pool.clone();
        let _ = std::thread::Builder::new()
            .name("xtalk-conn".to_string())
            .spawn(move || {
                let peer = stream.peer_addr().ok();
                if let Err(e) = serve_connection(stream, &state, &pool) {
                    // Connection errors are per-client noise, not server
                    // failures; record and move on.
                    let _ = (peer, e);
                }
            });
    }
}

fn serve_connection(
    stream: TcpStream,
    state: &Arc<ServeState>,
    pool: &PoolHandle,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(None) => return Ok(()), // clean EOF
            Ok(Some(v)) => v,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Framing survives a bad line: report and keep serving.
                Metrics::inc(&state.metrics.bad_requests);
                write_frame(&mut writer, &err_response(format!("bad request: {e}")))?;
                continue;
            }
            Err(e) => return Err(e),
        };
        Metrics::inc(&state.metrics.requests);
        let request = match Request::parse(&frame) {
            Ok(r) => r,
            Err(msg) => {
                Metrics::inc(&state.metrics.bad_requests);
                write_frame(&mut writer, &err_response(msg))?;
                continue;
            }
        };
        let envelope = match JobEnvelope::parse(&frame) {
            Ok(e) => e,
            Err(msg) => {
                Metrics::inc(&state.metrics.bad_requests);
                write_frame(&mut writer, &err_response(msg))?;
                continue;
            }
        };
        let response = dispatch(state, pool, request, envelope);
        write_frame(&mut writer, &response)?;
    }
}

/// Routes one request: light ones inline, heavy ones through the pool
/// with backpressure, admission control for deadline-bearing requests,
/// and a reply timeout.
fn dispatch(
    state: &Arc<ServeState>,
    pool: &PoolHandle,
    request: Request,
    envelope: JobEnvelope,
) -> Json {
    if !request.is_heavy() {
        return match request {
            Request::Ping => ok_response([("pong", true.into())]),
            Request::Cancel { job } => {
                let cancelled = state.cancel_job(&job);
                ok_response([
                    ("job", Json::Str(job)),
                    ("cancelled", cancelled.into()),
                ])
            }
            Request::Stats => {
                let mut snapshot = state.metrics.snapshot();
                if let Json::Obj(pairs) = &mut snapshot {
                    pairs.insert(0, ("ok".to_string(), Json::Bool(true)));
                    pairs.push(("epoch".to_string(), state.epoch().into()));
                    pairs.push(("cache_entries".to_string(), state.cache.len().into()));
                    if xtalk_obs::enabled() {
                        // Round-trip through our own parser: the obs JSON
                        // export is stable and line-oriented by design.
                        if let Ok(profile) = Json::parse(&xtalk_obs::snapshot().to_json()) {
                            pairs.push(("profile".to_string(), profile));
                        }
                    }
                }
                snapshot
            }
            Request::AdvanceDay { .. } => {
                let epoch = state.advance_day();
                ok_response([("epoch", epoch.into())])
            }
            Request::Shutdown => {
                state.shutdown.store(true, Ordering::SeqCst);
                poke(state_local_addr(state));
                ok_response([("stopping", true.into())])
            }
            heavy => err_response(format!("`{}` misclassified as light", heavy.kind())),
        };
    }

    // Admission control: a request whose budget is already smaller than
    // the queue's observed wait can only come back expired — refuse it up
    // front (retryable) instead of wasting a worker on it.
    let arrival = Instant::now();
    if let Some(deadline_ms) = envelope.deadline_ms {
        let wait_p90_ms = state.metrics.queue_wait_p90_ms();
        if wait_p90_ms > deadline_ms {
            Metrics::inc(&state.metrics.rejected_admission);
            xtalk_obs::counter!("serve.admission.rejected");
            return rejected_admission_response(deadline_ms, wait_p90_ms);
        }
    }
    let deadline = envelope.deadline_ms.map(|ms| arrival + Duration::from_millis(ms));
    // Register the cancel label before the job can start: a `cancel` must
    // be able to reach a job that is still queued.
    let cancel = match envelope.job.as_deref() {
        Some(label) => state.register_cancel(label),
        None => CancelToken::new(),
    };

    let (reply_tx, reply_rx) = mpsc::channel();
    // Gauge up *before* submitting: a fast worker may finish (and
    // decrement) before a post-submit increment would land.
    state.metrics.job_enqueued();
    let submitted = pool.try_submit(Job {
        request,
        reply: reply_tx,
        enqueued_at: arrival,
        deadline,
        cancel,
    });
    let response = match submitted {
        Submit::Accepted => match reply_rx.recv_timeout(state.config.job_timeout) {
            Ok(response) => response,
            Err(RecvTimeoutError::Timeout) => {
                Metrics::inc(&state.metrics.jobs_timed_out);
                err_response(format!(
                    "job timed out after {:?} (it keeps running; raise the server's job timeout for long jobs)",
                    state.config.job_timeout
                ))
            }
            Err(RecvTimeoutError::Disconnected) => err_response("worker dropped the job"),
        },
        Submit::Full => {
            state.metrics.job_rejected();
            Metrics::inc(&state.metrics.busy_rejections);
            busy_response()
        }
        Submit::ShuttingDown => {
            state.metrics.job_rejected();
            shutting_down_response()
        }
    };
    if let Some(label) = envelope.job.as_deref() {
        state.unregister_cancel(label);
    }
    response
}

/// The server's own listen address, for the shutdown self-poke. The
/// configured string re-resolves to the bound port because ephemeral
/// binds rewrite `config.addr` at startup — see [`ServeState`].
fn state_local_addr(state: &Arc<ServeState>) -> SocketAddr {
    state
        .config
        .addr
        .parse()
        .unwrap_or_else(|_| SocketAddr::from(([127, 0, 0, 1], 0)))
}
