//! Shared server state: configuration, device fleet, cache, metrics.

use crate::cache::{CacheEntry, CacheKey, CharacCache};
use crate::metrics::Metrics;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use xtalk_charac::policy::TimeModel;
use xtalk_charac::{characterize, Characterization, CharacterizationPolicy, RbConfig};
use xtalk_device::Device;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing jobs (0 = available parallelism).
    pub workers: usize,
    /// Jobs that may wait in the queue beyond the ones being executed;
    /// submissions past this bound get the busy response.
    pub queue_cap: usize,
    /// How long a connection waits for its job before reporting a
    /// timeout (the job itself is not cancelled).
    pub job_timeout: Duration,
    /// Seed for the device fleet's day-0 calibration.
    pub device_seed: u64,
    /// Enable the `xtalk-obs` profiling layer for the server process;
    /// span/counter data is merged into the `stats` response.
    pub profile: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
            queue_cap: 32,
            job_timeout: Duration::from_secs(120),
            device_seed: 7,
            profile: false,
        }
    }
}

impl ServeConfig {
    /// The worker count with `0` resolved to available parallelism.
    pub fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism().map_or(2, |n| n.get()),
            n => n,
        }
    }
}

/// Everything shared between the acceptor, connection threads and the
/// worker pool.
pub struct ServeState {
    /// The configuration the server started with.
    pub config: ServeConfig,
    /// The simulated device fleet, keyed by name. Mutated only by
    /// `advance_day`.
    devices: Mutex<BTreeMap<String, Device>>,
    /// The characterization cache.
    pub cache: CharacCache,
    /// Service counters.
    pub metrics: Metrics,
    /// Calibration epoch: starts at 0, bumped by each `advance_day`.
    epoch: AtomicU64,
    /// Set to stop the accept loop.
    pub shutdown: AtomicBool,
}

impl ServeState {
    /// Builds the state with the three IBMQ device models at day 0.
    pub fn new(config: ServeConfig) -> Arc<ServeState> {
        let devices = Device::all_ibmq(config.device_seed)
            .into_iter()
            .map(|d| (d.name().to_string(), d))
            .collect();
        Arc::new(ServeState {
            config,
            devices: Mutex::new(devices),
            cache: CharacCache::new(),
            metrics: Metrics::default(),
            epoch: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The current calibration epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// A snapshot of the named device's current (possibly drifted) model.
    /// Accepts both preset names (`ibmq_poughkeepsie`) and the short form
    /// the CLI uses (`poughkeepsie`).
    pub fn device(&self, name: &str) -> Result<Device, String> {
        let devices = self.devices.lock().unwrap();
        devices
            .get(name)
            .or_else(|| devices.get(&format!("ibmq_{name}")))
            .cloned()
            .ok_or_else(|| format!("unknown device `{name}` (try poughkeepsie, johannesburg, boeblingen)"))
    }

    /// Advances the simulated calibration day: every device drifts via
    /// [`Device::on_day`] and the characterization cache is invalidated.
    /// Returns the new epoch.
    pub fn advance_day(&self) -> u64 {
        let mut devices = self.devices.lock().unwrap();
        // Holding the device lock while bumping keeps epoch and fleet in
        // step for concurrent observers.
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        for device in devices.values_mut() {
            *device = device.on_day(epoch as u32);
        }
        drop(devices);
        self.cache.invalidate_before(epoch);
        epoch
    }

    /// The characterization for `(device, policy, seed)` at the current
    /// epoch, from cache when possible. Returns the entry and whether it
    /// was a cache hit.
    pub fn characterization(
        &self,
        device_name: &str,
        policy: &str,
        seed: u64,
        seqs: usize,
        shots: u64,
    ) -> Result<(Arc<CacheEntry>, bool), String> {
        let device = self.device(device_name)?;
        let policy_obj = match policy {
            "truth" => None,
            "all" => Some(CharacterizationPolicy::AllPairs),
            "onehop" => Some(CharacterizationPolicy::OneHop),
            "binpacked" => Some(CharacterizationPolicy::OneHopBinPacked { k_hops: 2 }),
            other => return Err(format!("unknown policy `{other}`")),
        };
        let key = CacheKey {
            device: device_name.to_string(),
            policy: policy.to_string(),
            seed,
            epoch: self.epoch(),
        };
        let (entry, hit) = self.cache.get_or_build(key, || match policy_obj {
            None => CacheEntry {
                charac: Characterization::from_ground_truth(&device),
                report: None,
            },
            Some(p) => {
                let config = RbConfig {
                    seqs_per_length: seqs.max(1),
                    shots: shots.max(16),
                    seed,
                    ..Default::default()
                };
                let (charac, report) =
                    characterize(&device, &p, &config, &TimeModel::default());
                CacheEntry { charac, report: Some(report) }
            }
        });
        Metrics::inc(if hit { &self.metrics.cache_hits } else { &self.metrics.cache_misses });
        Ok((entry, hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_drift_on_advance_day() {
        let state = ServeState::new(ServeConfig::default());
        let before = state.device("poughkeepsie").unwrap();
        assert_eq!(state.advance_day(), 1);
        let after = state.device("poughkeepsie").unwrap();
        assert_ne!(before.calibration(), after.calibration());
        assert!(state.device("nonesuch").is_err());
    }

    #[test]
    fn characterization_caches_until_day_advances() {
        let state = ServeState::new(ServeConfig::default());
        let (_, hit) = state.characterization("boeblingen", "truth", 7, 3, 96).unwrap();
        assert!(!hit);
        let (_, hit) = state.characterization("boeblingen", "truth", 7, 3, 96).unwrap();
        assert!(hit);
        state.advance_day();
        let (_, hit) = state.characterization("boeblingen", "truth", 7, 3, 96).unwrap();
        assert!(!hit, "drift must invalidate the cache");
        assert_eq!(state.metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(state.metrics.cache_misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn unknown_policy_is_rejected() {
        let state = ServeState::new(ServeConfig::default());
        assert!(state.characterization("poughkeepsie", "psychic", 7, 3, 96).is_err());
    }
}
