//! Shared server state: configuration, device fleet, cache, metrics —
//! and the characterization **degradation ladder**.
//!
//! # Degradation ladder
//!
//! [`ServeState::characterization`] tries three rungs, in order:
//!
//! 1. **Fresh** — the characterization for the current calibration epoch,
//!    from cache or built on demand.
//! 2. **Stale last-known-good** — if the build fails (panics, errors, or
//!    an injected `cache.lookup`/`charac.run` fault), fall back to the
//!    most recent successful characterization of the same
//!    `(device, policy, seed)` from an earlier epoch, provided it is no
//!    older than [`ServeConfig::stale_ttl_epochs`]. The response is
//!    flagged so the caller knows the error tables predate current
//!    calibration.
//! 3. **Independent-error model** — if there is no last-known-good within
//!    the TTL, the caller ([`crate::jobs`]) degrades to a
//!    characterization holding only per-gate independent error rates from
//!    the live calibration (no conditional/crosstalk terms) and forces
//!    the crosstalk-oblivious `par` scheduler, which never consults the
//!    missing terms.

use crate::cache::{CacheEntry, CacheKey, CharacCache};
use crate::metrics::Metrics;
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use xtalk_budget::{Budget, CancelToken};
use xtalk_charac::policy::TimeModel;
use xtalk_charac::{characterize_budgeted, Characterization, CharacterizationPolicy, RbConfig};
use xtalk_device::Device;

/// Where a characterization came from, for response flagging.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CharacSource {
    /// Built (or cached) for the current calibration epoch.
    Fresh {
        /// `true` if served from cache without rebuilding.
        cached: bool,
    },
    /// The current-epoch build failed; this is the last-known-good entry
    /// from an earlier epoch, within the staleness TTL.
    StaleLkg {
        /// Epoch the entry was built for.
        epoch: u64,
        /// How many epochs old it is (`current - epoch`, ≥ 1).
        age: u64,
    },
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing jobs (0 = available parallelism).
    pub workers: usize,
    /// Jobs that may wait in the queue beyond the ones being executed;
    /// submissions past this bound get the busy response.
    pub queue_cap: usize,
    /// How long a connection waits for its job before reporting a
    /// timeout (the job itself is not cancelled).
    pub job_timeout: Duration,
    /// Seed for the device fleet's day-0 calibration.
    pub device_seed: u64,
    /// Enable the `xtalk-obs` profiling layer for the server process;
    /// span/counter data is merged into the `stats` response.
    pub profile: bool,
    /// How many epochs a last-known-good characterization may lag the
    /// current calibration before it is refused as a fallback (rung 2 of
    /// the degradation ladder). `0` disables stale fallback entirely.
    pub stale_ttl_epochs: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
            queue_cap: 32,
            job_timeout: Duration::from_secs(120),
            device_seed: 7,
            profile: false,
            stale_ttl_epochs: 3,
        }
    }
}

impl ServeConfig {
    /// The worker count with `0` resolved to available parallelism.
    pub fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism().map_or(2, |n| n.get()),
            n => n,
        }
    }
}

/// Everything shared between the acceptor, connection threads and the
/// worker pool.
pub struct ServeState {
    /// The configuration the server started with.
    pub config: ServeConfig,
    /// The simulated device fleet, keyed by name. Mutated only by
    /// `advance_day`.
    devices: Mutex<BTreeMap<String, Device>>,
    /// The characterization cache — a typed layer over the shared
    /// content-addressed artifact store ([`CharacCache::artifacts`]) that
    /// also backs every job's compile pipeline, so `compare`-style jobs
    /// reuse the lower/place/route prefix across schedulers and one
    /// `advance_day` sweep invalidates characterizations and compile
    /// artifacts alike.
    pub cache: CharacCache,
    /// Service counters.
    pub metrics: Metrics,
    /// Calibration epoch: starts at 0, bumped by each `advance_day`.
    epoch: AtomicU64,
    /// Set to stop the accept loop.
    pub shutdown: AtomicBool,
    /// Last-known-good characterizations by `(device, policy, seed)`,
    /// with the epoch each was built for. Unlike [`CharacCache`] this
    /// map survives `advance_day`: it exists precisely so a *failed*
    /// rebuild can fall back to the previous epoch's result.
    lkg: Mutex<LkgMap>,
    /// In-flight cancellable jobs: client-chosen label → the cancel token
    /// the job's [`Budget`] polls. Registered at admission (so a queued
    /// job can be cancelled before it runs), unregistered by the
    /// connection thread once the reply lands.
    cancels: Mutex<HashMap<String, CancelToken>>,
}

/// Last-known-good side table: `(device, policy, seed)` → the epoch a
/// characterization was built for, plus the entry itself.
type LkgMap = HashMap<(String, String, u64), (u64, Arc<CacheEntry>)>;

impl ServeState {
    /// Builds the state with the three IBMQ device models at day 0.
    pub fn new(config: ServeConfig) -> Arc<ServeState> {
        let devices = Device::all_ibmq(config.device_seed)
            .into_iter()
            .map(|d| (d.name().to_string(), d))
            .collect();
        Arc::new(ServeState {
            config,
            devices: Mutex::new(devices),
            cache: CharacCache::new(),
            metrics: Metrics::default(),
            epoch: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            lkg: Mutex::new(HashMap::new()),
            cancels: Mutex::new(HashMap::new()),
        })
    }

    /// Registers a fresh cancel token under `label`, returning the token
    /// the job's budget should poll. A duplicate label simply replaces
    /// the previous registration (newest in-flight job wins).
    pub fn register_cancel(&self, label: &str) -> CancelToken {
        let token = CancelToken::new();
        self.cancels.lock().unwrap().insert(label.to_string(), token.clone());
        token
    }

    /// Drops the registration for `label` (the job replied or was
    /// rejected). Idempotent.
    pub fn unregister_cancel(&self, label: &str) {
        self.cancels.lock().unwrap().remove(label);
    }

    /// Trips the cancel token registered under `label`, if any. Returns
    /// `true` when a registered job was found — `false` means the label
    /// is unknown or the job already finished (not an error: cancels
    /// race completions by nature).
    pub fn cancel_job(&self, label: &str) -> bool {
        let found = self.cancels.lock().unwrap().get(label).cloned();
        match found {
            Some(token) => {
                token.cancel();
                Metrics::inc(&self.metrics.jobs_cancelled);
                xtalk_obs::counter!("serve.job.cancelled");
                true
            }
            None => false,
        }
    }

    /// The current calibration epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// A snapshot of the named device's current (possibly drifted) model.
    /// Accepts both preset names (`ibmq_poughkeepsie`) and the short form
    /// the CLI uses (`poughkeepsie`).
    pub fn device(&self, name: &str) -> Result<Device, String> {
        let devices = self.devices.lock().unwrap();
        devices
            .get(name)
            .or_else(|| devices.get(&format!("ibmq_{name}")))
            .cloned()
            .ok_or_else(|| format!("unknown device `{name}` (try poughkeepsie, johannesburg, boeblingen)"))
    }

    /// Advances the simulated calibration day: every device drifts via
    /// [`Device::on_day`] and the characterization cache is invalidated.
    /// Returns the new epoch.
    pub fn advance_day(&self) -> u64 {
        let mut devices = self.devices.lock().unwrap();
        // Holding the device lock while bumping keeps epoch and fleet in
        // step for concurrent observers.
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        for device in devices.values_mut() {
            *device = device.on_day(epoch as u32);
        }
        drop(devices);
        self.cache.invalidate_before(epoch);
        epoch
    }

    /// The characterization for `(device, policy, seed)` at the current
    /// epoch, from cache when possible, degrading to a stale
    /// last-known-good entry when the build fails (see the module docs).
    /// `Err` means both rungs 1 and 2 are exhausted — the *request
    /// parameters* are bad, or the build failed with no usable fallback —
    /// and the caller decides whether rung 3 applies.
    pub fn characterization(
        &self,
        device_name: &str,
        policy: &str,
        seed: u64,
        seqs: usize,
        shots: u64,
    ) -> Result<(Arc<CacheEntry>, CharacSource), String> {
        self.characterization_budgeted(device_name, policy, seed, seqs, shots, &Budget::unlimited())
    }

    /// [`ServeState::characterization`] under a cooperative [`Budget`].
    /// A budget-truncated build is treated exactly like a failed one: the
    /// partial tables are *not* cached (they would poison every later
    /// request sharing the key) and the request rides the degradation
    /// ladder — stale last-known-good, then the independent model.
    pub fn characterization_budgeted(
        &self,
        device_name: &str,
        policy: &str,
        seed: u64,
        seqs: usize,
        shots: u64,
        budget: &Budget,
    ) -> Result<(Arc<CacheEntry>, CharacSource), String> {
        let device = self.device(device_name)?;
        let policy_obj = match policy {
            "truth" => None,
            "all" => Some(CharacterizationPolicy::AllPairs),
            "onehop" => Some(CharacterizationPolicy::OneHop),
            "binpacked" => Some(CharacterizationPolicy::OneHopBinPacked { k_hops: 2 }),
            other => return Err(format!("unknown policy `{other}`")),
        };
        let epoch = self.epoch();
        let lkg_key = (device_name.to_string(), policy.to_string(), seed);
        let key = CacheKey {
            device: device_name.to_string(),
            policy: policy.to_string(),
            seed,
            epoch,
        };
        // Rung 1: fresh, from cache or a guarded build. Injected
        // `cache.lookup`/`charac.run` faults and build panics all land in
        // `failure` below instead of taking down the worker.
        let failure: String = 'fresh: {
            if let Some(msg) = xtalk_fault::fire("cache.lookup") {
                break 'fresh format!("characterization store unavailable: {msg}");
            }
            if let Some(entry) = self.cache.get(&key) {
                Metrics::inc(&self.metrics.cache_hits);
                return Ok((entry, CharacSource::Fresh { cached: true }));
            }
            let built = catch_unwind(AssertUnwindSafe(|| -> Result<CacheEntry, String> {
                if let Some(msg) = xtalk_fault::fire("charac.run") {
                    return Err(format!("characterization failed: {msg}"));
                }
                match policy_obj {
                    None => Ok(CacheEntry {
                        charac: Characterization::from_ground_truth(&device),
                        report: None,
                    }),
                    Some(p) => {
                        let config = RbConfig {
                            seqs_per_length: seqs.max(1),
                            shots: shots.max(16),
                            seed,
                            ..Default::default()
                        };
                        let (charac, report) =
                            characterize_budgeted(&device, &p, &config, &TimeModel::default(), budget);
                        if !report.complete {
                            // A truncated sweep is a failed build: partial
                            // tables must not enter the cache or the LKG
                            // side-table.
                            return Err(format!(
                                "characterization budget exhausted after {}/{} bins",
                                report.bins_completed, report.bins_total
                            ));
                        }
                        Ok(CacheEntry { charac, report: Some(report) })
                    }
                }
            }));
            match built {
                Ok(Ok(entry)) => {
                    let entry = Arc::new(entry);
                    self.cache.insert(key, entry.clone());
                    self.lkg
                        .lock()
                        .unwrap()
                        .insert(lkg_key, (epoch, entry.clone()));
                    Metrics::inc(&self.metrics.cache_misses);
                    return Ok((entry, CharacSource::Fresh { cached: false }));
                }
                Ok(Err(msg)) => msg,
                Err(_) => "characterization panicked".to_string(),
            }
        };
        // Rung 2: stale last-known-good within the TTL.
        Metrics::inc(&self.metrics.charac_failures);
        xtalk_obs::counter!("serve.charac.failure");
        if let Some((lkg_epoch, entry)) = self.lkg.lock().unwrap().get(&lkg_key).cloned() {
            let age = epoch.saturating_sub(lkg_epoch);
            if age == 0 {
                // The primary lookup failed but the side-table holds a
                // current-epoch entry — not actually stale.
                return Ok((entry, CharacSource::Fresh { cached: true }));
            }
            if age <= self.config.stale_ttl_epochs {
                Metrics::inc(&self.metrics.degraded_stale);
                xtalk_obs::counter!("serve.charac.stale_fallback");
                return Ok((entry, CharacSource::StaleLkg { epoch: lkg_epoch, age }));
            }
        }
        Err(failure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_drift_on_advance_day() {
        let state = ServeState::new(ServeConfig::default());
        let before = state.device("poughkeepsie").unwrap();
        assert_eq!(state.advance_day(), 1);
        let after = state.device("poughkeepsie").unwrap();
        assert_ne!(before.calibration(), after.calibration());
        assert!(state.device("nonesuch").is_err());
    }

    #[test]
    fn characterization_caches_until_day_advances() {
        let _gate = fault_gate();
        let state = ServeState::new(ServeConfig::default());
        let (_, src) = state.characterization("boeblingen", "truth", 7, 3, 96).unwrap();
        assert_eq!(src, CharacSource::Fresh { cached: false });
        let (_, src) = state.characterization("boeblingen", "truth", 7, 3, 96).unwrap();
        assert_eq!(src, CharacSource::Fresh { cached: true });
        state.advance_day();
        let (_, src) = state.characterization("boeblingen", "truth", 7, 3, 96).unwrap();
        assert_eq!(src, CharacSource::Fresh { cached: false }, "drift must invalidate the cache");
        assert_eq!(state.metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(state.metrics.cache_misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn unknown_policy_is_rejected() {
        let state = ServeState::new(ServeConfig::default());
        assert!(state.characterization("poughkeepsie", "psychic", 7, 3, 96).is_err());
    }

    use crate::testutil::fault_gate;

    #[test]
    fn failed_rebuild_falls_back_to_stale_lkg_within_ttl() {
        let _gate = fault_gate();
        let config = ServeConfig {
            stale_ttl_epochs: 2,
            ..ServeConfig::default()
        };
        let state = ServeState::new(config);
        let (fresh, src) = state.characterization("boeblingen", "truth", 7, 1, 32).unwrap();
        assert_eq!(src, CharacSource::Fresh { cached: false });
        state.advance_day();
        // Every build from now on fails.
        xtalk_fault::install_spec("charac.run:err:1.0", 1).unwrap();
        let (stale, src) = state.characterization("boeblingen", "truth", 7, 1, 32).unwrap();
        assert_eq!(src, CharacSource::StaleLkg { epoch: 0, age: 1 });
        assert_eq!(stale.charac, fresh.charac, "stale entry must be the day-0 tables");
        // Past the TTL the ladder is exhausted at this level.
        state.advance_day();
        state.advance_day();
        let err = state.characterization("boeblingen", "truth", 7, 1, 32).unwrap_err();
        assert!(err.contains("characterization failed"), "unexpected error: {err}");
        xtalk_fault::clear();
        assert!(state.metrics.degraded_stale.load(Ordering::Relaxed) >= 1);
        assert!(state.metrics.charac_failures.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn cancel_registry_trips_tokens_by_label() {
        let state = ServeState::new(ServeConfig::default());
        let token = state.register_cancel("bell-1");
        assert!(!token.is_cancelled());
        assert!(!state.cancel_job("nonesuch"), "unknown label is a miss");
        assert!(state.cancel_job("bell-1"));
        assert!(token.is_cancelled());
        assert_eq!(state.metrics.jobs_cancelled.load(Ordering::Relaxed), 1);
        // After unregistration the label no longer resolves.
        state.unregister_cancel("bell-1");
        assert!(!state.cancel_job("bell-1"));
        // A duplicate label retargets at the newest token.
        let first = state.register_cancel("dup");
        let second = state.register_cancel("dup");
        assert!(state.cancel_job("dup"));
        assert!(!first.is_cancelled());
        assert!(second.is_cancelled());
    }

    #[test]
    fn budget_truncated_build_rides_the_ladder_without_caching() {
        let _gate = fault_gate();
        let state = ServeState::new(ServeConfig::default());
        // An exhausted budget truncates the RB sweep immediately: with no
        // LKG the ladder is exhausted and the partial must not be cached.
        let dead = Budget::unlimited();
        dead.cancel_token().cancel();
        let err = state
            .characterization_budgeted("boeblingen", "onehop", 7, 1, 32, &dead)
            .unwrap_err();
        assert!(err.contains("budget exhausted"), "unexpected error: {err}");
        assert_eq!(state.cache.len(), 0, "partial tables must not be cached");
        // A later unbudgeted request rebuilds from scratch and succeeds.
        let (_, src) = state.characterization("boeblingen", "onehop", 7, 1, 32).unwrap();
        assert_eq!(src, CharacSource::Fresh { cached: false });
        // Once an LKG exists, a truncated rebuild after drift degrades to
        // the stale entry instead of failing.
        state.advance_day();
        let (_, src) = state
            .characterization_budgeted("boeblingen", "onehop", 7, 1, 32, &dead)
            .unwrap();
        assert_eq!(src, CharacSource::StaleLkg { epoch: 0, age: 1 });
    }

    #[test]
    fn store_fault_with_current_lkg_is_not_stale() {
        let _gate = fault_gate();
        let state = ServeState::new(ServeConfig::default());
        let (_, src) = state.characterization("poughkeepsie", "truth", 9, 1, 32).unwrap();
        assert_eq!(src, CharacSource::Fresh { cached: false });
        // The store lookup fails, but the LKG side-table has a
        // current-epoch entry: served fresh, not flagged stale.
        xtalk_fault::install_spec("cache.lookup:err:1.0", 1).unwrap();
        let (_, src) = state.characterization("poughkeepsie", "truth", 9, 1, 32).unwrap();
        xtalk_fault::clear();
        assert_eq!(src, CharacSource::Fresh { cached: true });
    }
}
